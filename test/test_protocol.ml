(* Protocol tests: coherence, invalidation, recalls, SMP sharing,
   downgrades, LL/SC, false misses, the memory-model litmus test. *)

module P = Protocol
module E = Protocol.Engine

let base = P.Config.default.P.Config.shared_base
let flag64 = 0xDEADBEEFDEADBEEFL

type world = {
  net : Mchan.Net.t;
  eng : E.t;
  sim : Sim.Engine.t;
  mutable n_workers : int;
  done_count : int ref;
  mutable procs : Sim.Proc.t list;
}

let setup ?(variant = P.Config.Smp) ?(model = P.Config.Rc) ?(direct_downgrade = true)
    ?(nodes = 2) ?(cpus = 2) ?(regions = []) ?mutation
    ?(homing = P.Config.Static) ?(migration_threshold = 1) ?coalescing () =
  let netcfg =
    { Mchan.Net.default_config with Mchan.Net.nodes; cpus_per_node = cpus; coalescing }
  in
  let net = Mchan.Net.create netcfg in
  let cfg =
    {
      P.Config.default with
      P.Config.variant;
      model;
      direct_downgrade;
      regions;
      mutation;
      homing;
      migration_threshold;
      check_invariants = homing <> P.Config.Static;
      shared_size = 64 * 1024;
    }
  in
  let eng = E.create ~cfg ~net in
  { net; eng; sim = Mchan.Net.engine net; n_workers = 0; done_count = ref 0; procs = [] }

let pulse_all_nodes w =
  let nodes = (Mchan.Net.config w.net).Mchan.Net.nodes in
  for n = 0 to nodes - 1 do
    Sim.Signal.pulse (Mchan.Net.node_signal w.net n)
  done

(* Spawn a worker process running [body pcb].  After its body completes,
   the worker keeps serving protocol requests until every worker is done
   — like a real Shasta process, which stays alive to serve its protocol
   and application data after the application code exits (Section 4.3.3). *)
let worker w ~cpu_i body =
  let cpu = Mchan.Net.nth_cpu w.net cpu_i in
  let pcb_ref = ref None in
  w.n_workers <- w.n_workers + 1;
  let proc =
    Sim.Proc.spawn ~name:(Printf.sprintf "w%d" cpu_i) cpu (fun () ->
        let pcb = Option.get !pcb_ref in
        body pcb;
        (* Drain outstanding non-blocking stores before counting done. *)
        E.mb pcb;
        incr w.done_count;
        pulse_all_nodes w;
        Sim.Proc.stall (fun () -> !(w.done_count) >= w.n_workers))
  in
  let pcb = E.attach w.eng proc in
  proc.Sim.Proc.on_poll <- (fun _ -> E.service pcb);
  pcb_ref := Some pcb;
  w.procs <- proc :: w.procs;
  (proc, pcb)

let run w =
  ignore (Sim.Engine.run ~until:60.0 w.sim);
  (* Surface any exception raised inside a worker fiber. *)
  List.iter
    (fun p ->
      match p.Sim.Proc.failure with
      | Some e ->
          Alcotest.failf "worker %s failed: %s" p.Sim.Proc.name (Printexc.to_string e)
      | None -> ())
    w.procs

(* Emulate the inline check paths (what lib/shasta's runtime does). *)
let sload pcb addr =
  let v = E.raw_read pcb addr Alpha.Insn.W64 in
  if v = flag64 then E.load_miss pcb addr Alpha.Insn.W64 else v

let sstore pcb addr v =
  (match E.block_state pcb addr with
  | P.Ptypes.Exclusive, _ -> ()
  | (P.Ptypes.Invalid | P.Ptypes.Shared | P.Ptypes.Pending), _ -> E.store_miss pcb addr);
  E.raw_write pcb addr Alpha.Insn.W64 v

let test_read_migration () =
  let w = setup () in
  let a = base + 4096 in
  let got = ref 0L in
  let _, _ = worker w ~cpu_i:0 (fun pcb -> sstore pcb a 42L) in
  let _ =
    worker w ~cpu_i:2 (* node 1 *) (fun pcb ->
        Sim.Proc.sleep 0.001;
        got := sload pcb a)
  in
  E.init w.eng;
  run w;
  Alcotest.(check int64) "remote read sees the write" 42L !got

let test_write_invalidates_readers () =
  let w = setup ~model:P.Config.Sc () in
  let a = base + 8192 in
  let r1 = ref 0L and r2 = ref 0L in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        sstore pcb a 1L;
        (* Keep working (and therefore polling) so P1's read is served. *)
        Sim.Proc.work 0.005;
        sstore pcb a 2L)
  in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        Sim.Proc.sleep 0.002;
        r1 := sload pcb a;
        Sim.Proc.sleep 0.006;
        Sim.Proc.work 1e-5;
        r2 := sload pcb a)
  in
  E.init w.eng;
  run w;
  Alcotest.(check int64) "first read" 1L !r1;
  Alcotest.(check int64) "read after invalidation" 2L !r2

let test_false_miss () =
  let w = setup () in
  let a = base + 1024 in
  let reader_pcb = ref None in
  let got = ref 0L in
  let _ = worker w ~cpu_i:0 (fun pcb -> sstore pcb a flag64) in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        reader_pcb := Some pcb;
        Sim.Proc.sleep 0.002;
        got := sload pcb a;
        (* The line is now valid but contains the flag: a second load is
           a false miss. *)
        got := sload pcb a)
  in
  E.init w.eng;
  run w;
  Alcotest.(check int64) "flag data readable" flag64 !got;
  let st = E.stats (Option.get !reader_pcb) in
  Alcotest.(check bool) "false miss recorded" true (st.E.false_misses >= 1)

let test_recall_to_shared () =
  (* P0 holds the block exclusive; P1's read downgrades it; both end up
     with shared readable copies. *)
  let w = setup () in
  let a = base + 2048 in
  let p0 = ref None and p1 = ref None in
  let r0 = ref 0L and r1 = ref 0L in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        p0 := Some pcb;
        sstore pcb a 7L;
        Sim.Proc.sleep 0.01;
        r0 := sload pcb a)
  in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        p1 := Some pcb;
        Sim.Proc.sleep 0.003;
        r1 := sload pcb a)
  in
  E.init w.eng;
  run w;
  Alcotest.(check int64) "owner still reads" 7L !r0;
  Alcotest.(check int64) "reader got dirty data" 7L !r1;
  let s0, _ = E.block_state (Option.get !p0) a in
  let s1, _ = E.block_state (Option.get !p1) a in
  let shared_or_better = function
    | P.Ptypes.Shared | P.Ptypes.Exclusive -> true
    | P.Ptypes.Invalid | P.Ptypes.Pending -> false
  in
  Alcotest.(check bool) "p0 readable" true (shared_or_better s0);
  Alcotest.(check bool) "p1 readable" true (shared_or_better s1)

let test_smp_intra_node_no_messages () =
  (* SMP-Shasta: two processes of one node share memory at hardware
     speed; the second process's read causes no protocol traffic. *)
  let w = setup ~variant:P.Config.Smp () in
  let a = base + 512 in
  let got = ref 0L in
  let reader = ref None in
  let _ = worker w ~cpu_i:0 (fun pcb -> sstore pcb a 9L) in
  let _ =
    worker w ~cpu_i:1 (* same node *) (fun pcb ->
        reader := Some pcb;
        Sim.Proc.sleep 0.002;
        got := sload pcb a)
  in
  E.init w.eng ~homes:[ 0 ];
  run w;
  Alcotest.(check int64) "intra-node read" 9L !got;
  Alcotest.(check int) "no remote messages" 0 (Mchan.Net.remote_messages w.net);
  let st = E.stats (Option.get !reader) in
  Alcotest.(check int) "no read misses for the reader" 0 st.E.read_misses

let test_base_variant_needs_messages () =
  (* Base-Shasta: the same placement exchanges messages because each
     process has a private copy. *)
  let w = setup ~variant:P.Config.Base () in
  let a = base + 512 in
  let got = ref 0L in
  let reader = ref None in
  let _, writer_pcb = worker w ~cpu_i:0 (fun pcb -> sstore pcb a 9L) in
  let _ =
    worker w ~cpu_i:1 (fun pcb ->
        reader := Some pcb;
        Sim.Proc.sleep 0.002;
        got := sload pcb a)
  in
  E.init w.eng ~homes:[ writer_pcb.E.dom.E.dom_id ];
  run w;
  Alcotest.(check int64) "read works" 9L !got;
  let st = E.stats (Option.get !reader) in
  Alcotest.(check bool) "reader really missed" true (st.E.read_misses >= 1);
  Alcotest.(check bool) "messages were exchanged" true (Mchan.Net.local_messages w.net > 0)

let test_direct_downgrade_latency () =
  (* P0 takes the block exclusive and then blocks (not in application
     code) for 50 ms.  P1's read at ~1 ms must complete quickly with
     direct downgrade, and only after P0 wakes without it. *)
  let scenario ~direct =
    let w = setup ~direct_downgrade:direct () in
    let a = base + 4096 in
    let read_done = ref infinity in
    (* A helper on P0's node plays the role of the always-available
       serving process (Section 4.3.2); it can recall the block but only
       P0 itself may downgrade its private state table. *)
    let _helper = worker w ~cpu_i:1 (fun _ -> ()) in
    let _ =
      worker w ~cpu_i:0 (fun pcb ->
          sstore pcb a 5L;
          E.mb pcb;
          pcb.E.in_app := false;
          Sim.Proc.sleep 0.050;
          pcb.E.in_app := true;
          (* Wake up and poll. *)
          Sim.Proc.work 0.001)
    in
    let _ =
      worker w ~cpu_i:2 (fun pcb ->
          Sim.Proc.sleep 0.001;
          ignore (sload pcb a);
          read_done := Sim.Engine.now w.sim)
    in
    E.init w.eng ~homes:[ 0 ];
    run w;
    !read_done
  in
  let fast = scenario ~direct:true in
  let slow = scenario ~direct:false in
  Alcotest.(check bool)
    (Printf.sprintf "direct downgrade fast (%.4fs)" fast)
    true (fast < 0.010);
  Alcotest.(check bool)
    (Printf.sprintf "without it the read waits for the sleeper (%.4fs)" slow)
    true (slow > 0.045)

let test_sc_hardware_path_when_exclusive () =
  let w = setup () in
  let a = base + 64 in
  let outcome = ref (Alpha.Runtime.Handled false) in
  let _server = worker w ~cpu_i:2 (fun _ -> ()) in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        sstore pcb a 0L;
        E.ll_ensure pcb a;
        outcome := E.sc_check pcb a Alpha.Insn.W64 1L)
  in
  E.init w.eng;
  run w;
  match !outcome with
  | Alpha.Runtime.Run_in_hardware -> ()
  | Alpha.Runtime.Handled _ -> Alcotest.fail "expected hardware path for exclusive line"

let test_sc_protocol_path_when_shared () =
  (* P1 reads the line (so both domains share it); P0's SC then goes
     through the Sc_upgrade protocol and succeeds, invalidating P1. *)
  let w = setup () in
  let a = base + 64 in
  let sc_ok = ref false in
  let p1_after = ref 0L in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        sstore pcb a 0L;
        Sim.Proc.sleep 0.005;
        (* By now P1 downgraded us to shared. *)
        E.ll_ensure pcb a;
        match E.sc_check pcb a Alpha.Insn.W64 1L with
        | Alpha.Runtime.Handled ok -> sc_ok := ok
        | Alpha.Runtime.Run_in_hardware ->
            (* Still exclusive (P1 was slow): the hardware path performs
               the conditional store itself. *)
            sc_ok := E.raw_read pcb a Alpha.Insn.W64 = 0L;
            E.raw_write pcb a Alpha.Insn.W64 1L)
  in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        Sim.Proc.sleep 0.002;
        ignore (sload pcb a);
        Sim.Proc.sleep 0.010;
        (* Work a little so pending invalidations get polled and applied
           before the read (mere sleep never polls). *)
        Sim.Proc.work 1e-5;
        p1_after := sload pcb a)
  in
  E.init w.eng;
  run w;
  Alcotest.(check bool) "SC succeeded" true !sc_ok;
  Alcotest.(check int64) "P1 sees the SC's store" 1L !p1_after

let test_sc_fails_when_invalidated () =
  (* P0 LLs a shared line; P1 takes it exclusive before P0's SC: the SC
     must fail without fetching the line. *)
  let w = setup ~model:P.Config.Sc () in
  let a = base + 128 in
  let sc_result = ref None in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        ignore (sload pcb a);
        E.ll_ensure pcb a;
        (* Wait long enough for P1's write to invalidate us. *)
        Sim.Proc.sleep 0.010;
        match E.sc_check pcb a Alpha.Insn.W64 99L with
        | Alpha.Runtime.Handled ok -> sc_result := Some ok
        | Alpha.Runtime.Run_in_hardware -> sc_result := Some true)
  in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        Sim.Proc.sleep 0.003;
        sstore pcb a 7L)
  in
  E.init w.eng ~homes:[ 0 ];
  run w;
  Alcotest.(check (option bool)) "SC failed" (Some false) !sc_result

let test_mb_drains_stores () =
  (* Non-blocking stores: after MB the store must be globally visible. *)
  let w = setup ~model:P.Config.Rc () in
  let a = base + 256 in
  let seen = ref 0L in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        (* Take the block so that P0's store actually misses. *)
        sstore pcb a 1L)
  in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        Sim.Proc.sleep 0.005;
        sstore pcb a 2L;
        E.mb pcb;
        (* After the MB, every domain either has an invalid copy or the
           new value. *)
        seen := sload pcb a)
  in
  E.init w.eng ~homes:[ 1 ];
  run w;
  Alcotest.(check int64) "own store visible after MB" 2L !seen

let test_batch_fetches_lines_in_parallel () =
  let w = setup () in
  let line = P.Config.default.P.Config.line_size in
  let addrs = List.init 8 (fun i -> base + 16384 + (i * line)) in
  let batch_time = ref 0.0 and serial_time = ref 0.0 in
  (* Two separate clusters to compare independent timings; each needs a
     serving process on the home node. *)
  let _server = worker w ~cpu_i:2 (fun _ -> ()) in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        let t0 = Sim.Engine.now w.sim in
        E.batch pcb (List.map (fun a -> (a, Alpha.Insn.W64, Alpha.Insn.Load_acc)) addrs);
        batch_time := Sim.Engine.now w.sim -. t0)
  in
  E.init w.eng ~homes:[ 1 ];
  run w;
  let w2 = setup () in
  let _server2 = worker w2 ~cpu_i:2 (fun _ -> ()) in
  let _ =
    worker w2 ~cpu_i:0 (fun pcb ->
        let t0 = Sim.Engine.now w2.sim in
        List.iter (fun a -> ignore (sload pcb a)) addrs;
        serial_time := Sim.Engine.now w2.sim -. t0)
  in
  E.init w2.eng ~homes:[ 1 ];
  run w2;
  Alcotest.(check bool)
    (Printf.sprintf "batch (%.1fus) beats serial (%.1fus)"
       (Sim.Units.to_us !batch_time) (Sim.Units.to_us !serial_time))
    true
    (!batch_time < !serial_time *. 0.7)

(* A mixed layout for the granularity tests: the lower half of the 64 KB
   segment stays at 64-byte blocks, the upper half uses 256-byte blocks. *)
let mixed_regions =
  [
    { P.Layout.rs_name = "fine"; rs_size = 32 * 1024; rs_block = 64 };
    { P.Layout.rs_name = "coarse"; rs_size = 32 * 1024; rs_block = 256 };
  ]

let test_block_size_granularity () =
  (* In the 256-byte region, fetching one word brings the whole block. *)
  let w = setup ~regions:mixed_regions () in
  let line = P.Config.default.P.Config.line_size in
  let a = base + 32768 (* first block of the coarse region *) in
  let got = ref 0L in
  let misses = ref 0 in
  let reader = ref None in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        sstore pcb a 1L;
        sstore pcb (a + (3 * line)) 4L)
  in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        reader := Some pcb;
        Sim.Proc.sleep 0.005;
        ignore (sload pcb a);
        got := sload pcb (a + (3 * line));
        misses := (E.stats pcb).E.read_misses)
  in
  E.init w.eng ~homes:[ 0 ];
  run w;
  Alcotest.(check int64) "whole block transferred" 4L !got;
  Alcotest.(check int) "single miss for a 256-byte block" 1 !misses;
  (* The same span in the fine region is four separate blocks. *)
  let b0 = E.block_of_addr w.eng base in
  Alcotest.(check int) "fine region: 64-byte extents" 64 (E.block_bytes w.eng b0);
  let bc = E.block_of_addr w.eng a in
  Alcotest.(check int) "coarse region: 256-byte extents" 256 (E.block_bytes w.eng bc);
  Alcotest.(check int) "one block covers the four lines" bc
    (E.block_of_addr w.eng (a + (3 * line)))

let test_directory_sharer_bitmask () =
  let d = P.Directory.create ~home_domain:2 in
  let e = P.Directory.entry d 0 in
  Alcotest.(check (list int)) "born with the home" [ 2 ] (P.Directory.sharers_list e);
  P.Directory.add_sharer e 5;
  P.Directory.add_sharer e 0;
  P.Directory.add_sharer e 5;
  Alcotest.(check (list int)) "insertion order, no duplicates" [ 0; 5; 2 ]
    (P.Directory.sharers_list e);
  Alcotest.(check bool) "is_sharer hit" true (P.Directory.is_sharer e 5);
  Alcotest.(check bool) "is_sharer miss" false (P.Directory.is_sharer e 3);
  P.Directory.remove_sharer e 2;
  Alcotest.(check (list int)) "removal" [ 0; 5 ] (P.Directory.sharers_list e);
  Alcotest.(check bool) "mask tracks removal" false (P.Directory.is_sharer e 2);
  P.Directory.clear_sharers e;
  Alcotest.(check bool) "cleared" true (P.Directory.no_sharers e);
  (* The bitset grows: domain ids beyond one word are fine now (64+-node
     clusters), only the sanity cap rejects. *)
  P.Directory.add_sharer e 307;
  Alcotest.(check bool) "word-boundary-crossing id accepted" true (P.Directory.is_sharer e 307);
  Alcotest.(check bool) "large id miss" false (P.Directory.is_sharer e 306);
  Alcotest.check_raises "domain id too large for the mask"
    (Invalid_argument
       (Printf.sprintf "Directory: domain id %d outside 0..%d" P.Directory.max_domains
          (P.Directory.max_domains - 1)))
    (fun () -> P.Directory.add_sharer e P.Directory.max_domains)

let test_wrong_block_extent_mutation_caught () =
  (* The seeded bug writes flag words one chunk past the invalidated
     block, corrupting the reader's Shared copy of the *next* block; the
     per-block-extent invariants (family 4) must flag the divergence. *)
  let w = setup ~mutation:P.Config.Wrong_block_extent () in
  let a = base + 4096 in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        (* Hold both a's block and the next one Shared. *)
        ignore (sload pcb a);
        ignore (sload pcb (a + 64));
        Sim.Proc.sleep 0.050)
  in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        (* Keep polling (the home must serve the reader's fetches) until
           they have long completed, so the spilled flags are not
           overwritten by an in-flight data reply. *)
        Sim.Proc.work 0.020;
        (* Invalidates the reader's copy of a's block — and, through the
           mutation, clobbers its copy of the next block too. *)
        sstore pcb a 1L)
  in
  E.init w.eng ~homes:[ 0 ];
  run w;
  Alcotest.(check bool) "mutation fired" true (E.mutation_fires w.eng > 0);
  let violations = E.check_quiescent w.eng in
  Alcotest.(check bool)
    (Printf.sprintf "extent violation detected (%s)" (String.concat "; " violations))
    true
    (List.exists
       (fun v ->
         (* The corrupted neighbour shows up as Shared-replica disagreement. *)
         let has s sub =
           let n = String.length sub in
           let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has v "disagree on Shared block")
       violations)

(* The Figure 2 litmus test: under the Alpha memory model the only
   allowed outcomes are (r1,r2) = (1,1) or (2,2): writes to A must be
   serialised and eventually propagated. *)
let litmus_figure2 w =
  let a = base + 40960 in
  let flag1 = base + 41024 and flag2 = base + 41088 in
  let flag3 = base + 41152 and flag4 = base + 41216 in
  let r1 = ref 0L and r2 = ref 0L in
  let spin pcb addr =
    let rec go () =
      if sload pcb addr <> 1L then begin
        Sim.Proc.work 1e-7;
        go ()
      end
    in
    go ()
  in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        sstore pcb a 1L;
        E.mb pcb;
        sstore pcb flag1 1L;
        E.mb pcb;
        sstore pcb flag2 1L)
  in
  let _ =
    worker w ~cpu_i:1 (fun pcb ->
        sstore pcb a 2L;
        E.mb pcb;
        sstore pcb flag3 1L;
        E.mb pcb;
        sstore pcb flag4 1L)
  in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        spin pcb flag1;
        spin pcb flag3;
        r1 := sload pcb a)
  in
  let _ =
    worker w ~cpu_i:3 (fun pcb ->
        spin pcb flag2;
        spin pcb flag4;
        r2 := sload pcb a)
  in
  E.init w.eng;
  run w;
  (!r1, !r2)

let test_litmus_write_serialization () =
  (* cpu 0,1 are node 0; cpu 2,3 are node 1 — the two readers sit on a
     different node from each other only in larger setups; still a valid
     test of write serialisation. *)
  let ok = ref true in
  for _ = 1 to 5 do
    let w = setup ~nodes:4 ~cpus:1 () in
    let r1, r2 = litmus_figure2 w in
    if not ((r1 = 1L && r2 = 1L) || (r1 = 2L && r2 = 2L)) then ok := false
  done;
  Alcotest.(check bool) "only (1,1) or (2,2) observed" true !ok

(* Randomised coherence stress: several processes hammer a small region
   with tagged writes; afterwards every readable copy agrees. *)
let test_random_stress_convergence () =
  let w = setup ~nodes:2 ~cpus:2 () in
  let nwords = 16 in
  let line = P.Config.default.P.Config.line_size in
  let addr i = base + 49152 + (i * line) in
  let pcbs = ref [] in
  for c = 0 to 3 do
    let rng = Sim.Rng.create (1000 + c) in
    let _ =
      worker w ~cpu_i:c (fun pcb ->
          pcbs := pcb :: !pcbs;
          for op = 1 to 200 do
            let i = Sim.Rng.int rng nwords in
            if Sim.Rng.bool rng then
              sstore pcb (addr i) (Int64.of_int ((c * 1_000_000) + op))
            else ignore (sload pcb (addr i));
            Sim.Proc.work 1e-6
          done;
          E.mb pcb)
    in
    ()
  done;
  E.init w.eng;
  run w;
  (* After quiescence: for every word, all domains holding a valid copy
     agree on the value. *)
  let ok = ref true in
  for i = 0 to nwords - 1 do
    let values =
      List.filter_map
        (fun pcb ->
          match E.block_state pcb (addr i) with
          | _, (P.Ptypes.Shared | P.Ptypes.Exclusive) ->
              Some (E.raw_read pcb (addr i) Alpha.Insn.W64)
          | _, (P.Ptypes.Invalid | P.Ptypes.Pending) -> None)
        !pcbs
    in
    match values with
    | [] -> ()
    | v :: rest -> if not (List.for_all (fun x -> x = v) rest) then ok := false
  done;
  Alcotest.(check bool) "all valid copies agree" true !ok

let test_home_placement_routes () =
  (* A range homed at domain 1: a domain-1 process's first touch is
     local (no remote messages at all). *)
  let w = setup () in
  let a = base + 8192 in
  let got = ref 0L in
  let _ = worker w ~cpu_i:2 (* node 1 *) (fun pcb -> got := sload pcb a) in
  E.set_home w.eng ~addr:a ~len:64 ~domain:1;
  E.init w.eng ~homes:[ 0 ];
  run w;
  Alcotest.(check int64) "read works" 0L !got;
  Alcotest.(check int) "no remote messages" 0 (Mchan.Net.remote_messages w.net)

let test_batch_defers_invalidation_flags () =
  (* Section 4.1: an invalidation arriving while the batch miss handler's
     caller is mid-batch must not write the flag values yet — the batched
     loads still need the old contents — but the line goes invalid and
     the flags land at the next protocol entry. *)
  let w = setup () in
  let a = base + 16384 in
  let block = ref 0 in
  let value_mid = ref 0L and flag_mid = ref true in
  let flag_after = ref false in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        ignore (sload pcb a);
        block := E.block_of_addr w.eng a;
        (* Enter a batch over this block (white-box). *)
        pcb.E.in_batch <- true;
        pcb.E.batch_blocks <- [ !block ];
        (* Wait for the remote write to invalidate us. *)
        Sim.Proc.stall (fun () ->
            match E.block_state pcb a with _, P.Ptypes.Invalid -> true | _ -> false);
        value_mid := E.raw_read pcb a Alpha.Insn.W64;
        flag_mid := E.word_is_flag pcb a;
        pcb.E.in_batch <- false;
        pcb.E.batch_blocks <- [];
        E.poll pcb;
        flag_after := E.word_is_flag pcb a)
  in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        Sim.Proc.sleep 0.002;
        sstore pcb a 5L)
  in
  E.init w.eng ~homes:[ 1 ];
  run w;
  Alcotest.(check bool) "flags deferred during the batch" false !flag_mid;
  Alcotest.(check int64) "old contents still readable mid-batch" 0L !value_mid;
  Alcotest.(check bool) "flags written at the next protocol entry" true !flag_after

let test_batch_store_reissue () =
  (* Section 4.1: a store executed after the batch check, to a line that
     was downgraded in between, is reissued at the next protocol entry. *)
  let w = setup () in
  let a = base + 24576 in
  let reissues = ref 0 in
  (* A server on the home node so the batch completes before the remote
     write starts (deterministic ordering). *)
  let _, server_pcb = worker w ~cpu_i:3 (fun _ -> ()) in
  let _, p0_pcb =
    worker w ~cpu_i:0 (fun pcb ->
        (* Batch with a store entry: fetches the line exclusive and arms
           the post-batch watch. *)
        E.batch pcb [ (a, Alpha.Insn.W64, Alpha.Insn.Store_acc) ];
        (* Polling (without a protocol entry) lets the remote write's
           invalidation land before our batched store executes. *)
        Sim.Proc.work 0.004;
        E.raw_write pcb a Alpha.Insn.W64 42L;
        E.poll pcb;
        reissues := (E.stats pcb).E.reissued_stores)
  in
  let _, p1_pcb =
    worker w ~cpu_i:2 (fun pcb ->
        Sim.Proc.sleep 0.001;
        sstore pcb a 7L)
  in
  E.init w.eng ~homes:[ 1 ];
  run w;
  Alcotest.(check int) "store was reissued" 1 !reissues;
  (* Home-serialised order: P1's store, then P0's reissue; after
     quiescence every valid copy holds 42. *)
  let final =
    List.filter_map
      (fun pcb ->
        match E.block_state pcb a with
        | _, (P.Ptypes.Shared | P.Ptypes.Exclusive) ->
            Some (E.raw_read pcb a Alpha.Insn.W64)
        | _, (P.Ptypes.Invalid | P.Ptypes.Pending) -> None)
      [ server_pcb; p0_pcb; p1_pcb ]
  in
  (match final with
  | v :: rest ->
      Alcotest.(check bool) "valid copies agree" true (List.for_all (fun x -> x = v) rest);
      Alcotest.(check int64) "reissued store wins (home-serialised last)" 42L v
  | [] -> Alcotest.fail "no valid copy after quiescence")

(* --- sharded home map: placement edge cases, migration, coalescing --- *)

let test_set_home_overlap_later_wins () =
  (* Overlapping override ranges: the later call wins on the overlap,
     the earlier call keeps the rest of its range. *)
  let w = setup () in
  let a = base + 32768 in
  let _ = worker w ~cpu_i:0 (fun _ -> ()) in
  let _ = worker w ~cpu_i:2 (fun _ -> ()) in
  E.set_home w.eng ~addr:a ~len:(4 * 64) ~domain:1;
  E.set_home w.eng ~addr:(a + 64) ~len:64 ~domain:0;
  E.init w.eng;
  run w;
  let home off = E.home_domain_of_block w.eng (E.block_of_addr w.eng (a + off)) in
  Alcotest.(check int) "start of first range" 1 (home 0);
  Alcotest.(check int) "overlap: later range wins" 0 (home 64);
  Alcotest.(check int) "past the overlap" 1 (home 128);
  Alcotest.(check int) "end of first range" 1 (home 192)

let test_set_home_after_init_raises () =
  let w = setup () in
  let _ = worker w ~cpu_i:0 (fun _ -> ()) in
  E.init w.eng;
  Alcotest.check_raises "set_home after init" (Invalid_argument "set_home after init")
    (fun () -> E.set_home w.eng ~addr:base ~len:64 ~domain:0);
  run w

let test_set_home_domain_out_of_range () =
  let w = setup () in
  let max = P.Directory.max_domains in
  let msg d = Printf.sprintf "set_home: domain %d outside 0..%d" d (max - 1) in
  Alcotest.check_raises "negative domain" (Invalid_argument (msg (-1))) (fun () ->
      E.set_home w.eng ~addr:base ~len:64 ~domain:(-1));
  Alcotest.check_raises "domain past max" (Invalid_argument (msg max)) (fun () ->
      E.set_home w.eng ~addr:base ~len:64 ~domain:max)

let test_migratory_home_transfer () =
  (* One exclusive request from a remote domain (threshold 1) moves the
     directory entry to the requester; at quiescence nothing is in
     flight and the generalized invariants hold. *)
  let w = setup ~homing:P.Config.Migratory ~nodes:2 ~cpus:1 () in
  let a = base + 4096 in
  let _ = worker w ~cpu_i:0 (fun _ -> ()) in
  let _ = worker w ~cpu_i:1 (fun pcb -> sstore pcb a 9L) in
  E.set_home w.eng ~addr:a ~len:64 ~domain:0;
  E.init w.eng;
  run w;
  let migrations, _, in_flight = E.migration_stats w.eng in
  Alcotest.(check bool) "home transferred" true (migrations >= 1);
  Alcotest.(check int) "no transfer in flight" 0 in_flight;
  Alcotest.(check int) "home followed the writer" 1
    (E.home_domain_of_block w.eng (E.block_of_addr w.eng a));
  Alcotest.(check (list string)) "quiescent invariants" [] (E.check_quiescent w.eng)

let test_first_touch_home () =
  (* First_touch: the first remote requester takes the entry, reads
     included. *)
  let w = setup ~homing:P.Config.First_touch ~nodes:2 ~cpus:1 () in
  let a = base + 8192 in
  let got = ref 1L in
  let _ = worker w ~cpu_i:0 (fun _ -> ()) in
  let _ = worker w ~cpu_i:1 (fun pcb -> got := sload pcb a) in
  E.set_home w.eng ~addr:a ~len:64 ~domain:0;
  E.init w.eng;
  run w;
  let migrations, _, in_flight = E.migration_stats w.eng in
  Alcotest.(check int64) "read sees the zero-filled block" 0L !got;
  Alcotest.(check bool) "first touch migrated the entry" true (migrations >= 1);
  Alcotest.(check int) "no transfer in flight" 0 in_flight;
  Alcotest.(check int) "home moved to the first toucher" 1
    (E.home_domain_of_block w.eng (E.block_of_addr w.eng a));
  Alcotest.(check (list string)) "quiescent invariants" [] (E.check_quiescent w.eng)

let test_stale_home_bounce () =
  (* After a migration, a third domain still routes to the static home;
     the stale home bounces the request with a forwarding hint, the
     retry lands at the new home, and the data is correct. *)
  let w = setup ~homing:P.Config.Migratory ~nodes:3 ~cpus:1 () in
  let a = base + 4096 in
  let got = ref 0L in
  let bounced = ref 0 in
  let _ = worker w ~cpu_i:0 (fun _ -> ()) in
  let _ = worker w ~cpu_i:1 (fun pcb -> sstore pcb a 77L; E.mb pcb) in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        Sim.Proc.sleep 0.005;
        got := sload pcb a;
        bounced := (E.stats pcb).E.bounces)
  in
  E.set_home w.eng ~addr:a ~len:64 ~domain:0;
  E.init w.eng;
  run w;
  Alcotest.(check int64) "bounced read still returns the data" 77L !got;
  Alcotest.(check bool) "request bounced off the stale home" true (!bounced >= 1);
  Alcotest.(check (list string)) "quiescent invariants" [] (E.check_quiescent w.eng)

let test_coalescing_preserves_protocol () =
  (* A burst of non-blocking store misses to distinct remote-homed
     blocks coalesces into shared frames on the node0 -> node1 link
     without changing what the protocol delivers. *)
  let w = setup ~coalescing:Mchan.Net.default_coalesce () in
  let a = base + 16384 in
  let nblk = 8 in
  let flag = a + (nblk * 64) in
  let got = ref 0L in
  let _ =
    worker w ~cpu_i:0 (fun pcb ->
        for i = 0 to nblk - 1 do
          sstore pcb (a + (i * 64)) (Int64.of_int (100 + i))
        done;
        E.mb pcb;
        sstore pcb flag 1L)
  in
  let _ =
    worker w ~cpu_i:2 (fun pcb ->
        (* Spin with protocol entries so the writer's invalidations are
           serviced (raw reads alone never enter the protocol). *)
        while sload pcb flag <> 1L do
          E.poll pcb;
          Sim.Proc.work 1e-6
        done;
        got := sload pcb (a + (3 * 64)))
  in
  E.set_home w.eng ~addr:a ~len:((nblk + 1) * 64) ~domain:1;
  E.init w.eng;
  run w;
  Alcotest.(check int64) "value survives coalescing" 103L !got;
  Alcotest.(check bool) "messages were batched" true (Mchan.Net.batches w.net >= 1);
  Alcotest.(check bool) "frames carry their messages" true
    (Mchan.Net.batched_messages w.net >= Mchan.Net.batches w.net)

let suite =
  [
    Alcotest.test_case "read migration" `Quick test_read_migration;
    Alcotest.test_case "write invalidates readers" `Quick test_write_invalidates_readers;
    Alcotest.test_case "false miss" `Quick test_false_miss;
    Alcotest.test_case "recall to shared" `Quick test_recall_to_shared;
    Alcotest.test_case "SMP intra-node sharing" `Quick test_smp_intra_node_no_messages;
    Alcotest.test_case "Base variant messages" `Quick test_base_variant_needs_messages;
    Alcotest.test_case "direct downgrade latency" `Quick test_direct_downgrade_latency;
    Alcotest.test_case "SC hardware path" `Quick test_sc_hardware_path_when_exclusive;
    Alcotest.test_case "SC protocol path" `Quick test_sc_protocol_path_when_shared;
    Alcotest.test_case "SC fails when invalidated" `Quick test_sc_fails_when_invalidated;
    Alcotest.test_case "MB drains stores" `Quick test_mb_drains_stores;
    Alcotest.test_case "batch parallel fetch" `Quick test_batch_fetches_lines_in_parallel;
    Alcotest.test_case "variable block size" `Quick test_block_size_granularity;
    Alcotest.test_case "directory sharer bitmask" `Quick test_directory_sharer_bitmask;
    Alcotest.test_case "wrong-block-extent mutation caught" `Quick
      test_wrong_block_extent_mutation_caught;
    Alcotest.test_case "litmus: write serialization" `Quick test_litmus_write_serialization;
    Alcotest.test_case "random stress convergence" `Quick test_random_stress_convergence;
    Alcotest.test_case "home placement routes" `Quick test_home_placement_routes;
    Alcotest.test_case "batch defers invalidation flags" `Quick
      test_batch_defers_invalidation_flags;
    Alcotest.test_case "batch store reissue" `Quick test_batch_store_reissue;
    Alcotest.test_case "set_home overlap: later wins" `Quick test_set_home_overlap_later_wins;
    Alcotest.test_case "set_home after init raises" `Quick test_set_home_after_init_raises;
    Alcotest.test_case "set_home rejects bad domain" `Quick test_set_home_domain_out_of_range;
    Alcotest.test_case "migratory home transfer" `Quick test_migratory_home_transfer;
    Alcotest.test_case "first-touch home" `Quick test_first_touch_home;
    Alcotest.test_case "stale home bounce" `Quick test_stale_home_bounce;
    Alcotest.test_case "coalescing preserves protocol" `Quick test_coalescing_preserves_protocol;
  ]
