(* Tests for the binary rewriter: check insertion, batching, polls,
   LL/SC transformation, and semantic preservation. *)

open Alpha

let shared_base = Rewrite.Instrument.default_options.Rewrite.Instrument.shared_base

let instrument ?options prog = Rewrite.Instrument.instrument ?options prog

let code_of prog name = (Program.find prog name).Program.code

let count pred code = Array.fold_left (fun n i -> if pred i then n + 1 else n) 0 code

let is_load_check = function Insn.Load_check _ -> true | _ -> false
let is_store_check = function Insn.Store_check _ -> true | _ -> false
let is_batch_check = function Insn.Batch_check _ -> true | _ -> false
let is_poll = function Insn.Poll -> true | _ -> false
let is_prefetch = function Insn.Prefetch_excl _ -> true | _ -> false
let is_mb_check = function Insn.Mb_check -> true | _ -> false
let is_ll_check = function Insn.Ll_check _ -> true | _ -> false
let is_sc_check = function Insn.Sc_check _ -> true | _ -> false

let test_private_not_checked () =
  (* Stack (sp) and static (gp) accesses must not receive checks. *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [ ldq t0 0 sp; stq t0 8 sp; ldq t1 0 gp; stq t1 16 gp; halt ];
        ])
  in
  let prog', stats = instrument prog in
  let code = code_of prog' "main" in
  Alcotest.(check int) "no load checks" 0 (count is_load_check code);
  Alcotest.(check int) "no store checks" 0 (count is_store_check code);
  Alcotest.(check int) "no batch checks" 0 (count is_batch_check code);
  Alcotest.(check int) "private accesses counted" 4
    stats.Rewrite.Instrument.accesses_private

let test_shared_load_checked () =
  let prog =
    Asm.(
      program
        [ proc "main" [ li t0 (Int64.of_int shared_base); ldq v0 0 t0; halt ] ])
  in
  let prog', stats = instrument prog in
  let code = code_of prog' "main" in
  Alcotest.(check int) "one load check" 1 (count is_load_check code);
  Alcotest.(check int) "loads_checked" 1 stats.Rewrite.Instrument.loads_checked;
  (* Flag-technique check goes after the load. *)
  let rec find i = if is_load_check code.(i) then i else find (i + 1) in
  let ci = find 0 in
  (match code.(ci - 1) with
  | Insn.Ld _ -> ()
  | _ -> Alcotest.fail "load check must directly follow the load")

let test_load_into_base_uses_state_check () =
  (* ldq t0, 0(t0) clobbers its base: flag technique impossible. *)
  let prog =
    Asm.(
      program
        [ proc "main" [ li t0 (Int64.of_int shared_base); ldq t0 0 t0; halt ] ])
  in
  let prog', _ = instrument prog in
  let code = code_of prog' "main" in
  Alcotest.(check int) "no flag check" 0 (count is_load_check code);
  Alcotest.(check int) "one state-table check" 1 (count is_batch_check code)

let test_store_checked_before () =
  let prog =
    Asm.(
      program
        [ proc "main" [ li t0 (Int64.of_int shared_base); stq zero 0 t0; halt ] ])
  in
  let prog', stats = instrument prog in
  let code = code_of prog' "main" in
  Alcotest.(check int) "one store check" 1 (count is_store_check code);
  Alcotest.(check int) "stores_checked" 1 stats.Rewrite.Instrument.stores_checked;
  let rec find i = if is_store_check code.(i) then i else find (i + 1) in
  let ci = find 0 in
  (match code.(ci + 1) with
  | Insn.St _ -> ()
  | _ -> Alcotest.fail "store check must directly precede the store")

let test_batching_merges_checks () =
  (* Four nearby accesses through one base: a single batch check. *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              li t0 (Int64.of_int shared_base);
              ldq t1 0 t0;
              ldq t2 8 t0;
              stq t1 16 t0;
              stq t2 24 t0;
              halt;
            ];
        ])
  in
  let prog', stats = instrument prog in
  let code = code_of prog' "main" in
  Alcotest.(check int) "one batch" 1 stats.Rewrite.Instrument.batches;
  Alcotest.(check int) "four accesses batched" 4 stats.Rewrite.Instrument.batched_accesses;
  Alcotest.(check int) "one batch check in code" 1 (count is_batch_check code);
  Alcotest.(check int) "no individual load checks" 0 (count is_load_check code);
  Alcotest.(check int) "no individual store checks" 0 (count is_store_check code)

let test_batching_respects_clobbered_base () =
  (* The base register is recomputed between accesses: the run must split
     and the second access cannot join the first batch. *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              li t0 (Int64.of_int shared_base);
              ldq t1 0 t0;
              ldq t2 8 t0;
              addi t0 64 t0;
              ldq t3 0 t0;
              ldq t4 8 t0;
              halt;
            ];
        ])
  in
  let _, stats = instrument prog in
  Alcotest.(check int) "two batches" 2 stats.Rewrite.Instrument.batches

let test_no_batch_option () =
  let options = { Rewrite.Instrument.default_options with Rewrite.Instrument.batching = false } in
  let prog =
    Asm.(
      program
        [
          proc "main"
            [ li t0 (Int64.of_int shared_base); ldq t1 0 t0; ldq t2 8 t0; halt ];
        ])
  in
  let prog', stats = instrument ~options prog in
  let code = code_of prog' "main" in
  Alcotest.(check int) "no batches" 0 stats.Rewrite.Instrument.batches;
  Alcotest.(check int) "two load checks" 2 (count is_load_check code)

let test_poll_at_backedge () =
  let prog =
    Asm.(
      program
        [
          proc "main"
            [ li t0 100L; label "loop"; subi t0 1 t0; bgt t0 "loop"; halt ];
        ])
  in
  let prog', stats = instrument prog in
  let code = code_of prog' "main" in
  Alcotest.(check int) "one poll" 1 (count is_poll code);
  Alcotest.(check int) "stat" 1 stats.Rewrite.Instrument.polls_inserted;
  (* The poll sits before the backedge so it runs on every iteration. *)
  let rec find i = if is_poll code.(i) then i else find (i + 1) in
  let pi = find 0 in
  (match code.(pi + 1) with
  | Insn.Bcond _ -> ()
  | _ -> Alcotest.fail "poll must precede the backedge branch")

let test_llsc_transform () =
  (* The paper's Figure 1 lock-acquire loop. *)
  let prog =
    Asm.(
      program
        [
          proc "acquire"
            [
              label "try_again";
              ll W32 t0 0 a0;
              bne t0 "try_again";
              li t0 1L;
              sc W32 t0 0 a0;
              beq t0 "try_again";
              mb;
              ret;
            ];
        ])
  in
  let prog', stats = instrument prog in
  let code = code_of prog' "acquire" in
  Alcotest.(check int) "pair found" 1 stats.Rewrite.Instrument.llsc_pairs;
  Alcotest.(check int) "ll_check" 1 (count is_ll_check code);
  Alcotest.(check int) "sc_check" 1 (count is_sc_check code);
  Alcotest.(check int) "prefetch hoisted" 1 (count is_prefetch code);
  Alcotest.(check int) "mb check" 1 (count is_mb_check code);
  (* No poll between LL and SC; the backedges are poll-free because they
     lie inside the LL/SC range... except branches after the SC. *)
  let ll_i = ref (-1) and sc_i = ref (-1) in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Ll _ -> ll_i := i
      | Insn.Sc _ -> sc_i := i
      | _ -> ())
    code;
  for i = !ll_i to !sc_i do
    if is_poll code.(i) then Alcotest.fail "poll inside LL/SC success path"
  done;
  (* Prefetch must be outside the loop: before the "try_again" label. *)
  let header = Program.label_index (Program.find prog' "acquire") "try_again" in
  let found_before = ref false in
  for i = 0 to header - 1 do
    if is_prefetch code.(i) then found_before := true
  done;
  Alcotest.(check bool) "prefetch before loop header" true !found_before

let test_mb_check_inserted () =
  let prog = Asm.(program [ proc "main" [ mb; mb; halt ] ]) in
  let prog', stats = instrument prog in
  let code = code_of prog' "main" in
  Alcotest.(check int) "two mb checks" 2 (count is_mb_check code);
  Alcotest.(check int) "stat" 2 stats.Rewrite.Instrument.mb_checks_inserted

let test_code_growth () =
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              li t0 (Int64.of_int shared_base);
              label "loop";
              ldq t1 0 t0;
              stq t1 8 t0;
              subi t2 1 t2;
              bgt t2 "loop";
              halt;
            ];
        ])
  in
  let _, stats = instrument prog in
  let growth = Rewrite.Instrument.code_growth stats in
  Alcotest.(check bool) "code grows" true (growth > 0.1);
  Alcotest.(check bool) "but not absurdly" true (growth < 3.0)

let run_flat ?args prog entry =
  let rt = Runtime.flat ~size:(1 lsl 16) () in
  Interp.run prog rt ~entry ?args ()

(* Semantic preservation: on a flat (hardware-like) runtime, where checks
   are no-ops, the instrumented program computes the same result. *)
let test_semantics_preserved_lock_program () =
  let body =
    Asm.
      [
        li a0 0x100L;
        label "try_again";
        ll W32 t0 0 a0;
        bne t0 "try_again";
        li t0 1L;
        sc W32 t0 0 a0;
        beq t0 "try_again";
        mb;
        ldl v0 0 a0;
        halt;
      ]
  in
  let prog = Asm.(program [ proc "main" body ]) in
  let prog', _ = instrument prog in
  Alcotest.(check int64) "same result" (run_flat prog "main").Interp.r0
    (run_flat prog' "main").Interp.r0

let qcheck_semantics_preserved =
  (* Random straight-line programs over private and shared addresses give
     identical results with and without instrumentation on a flat
     runtime. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 30)
        (oneof
           [
             map2 (fun r v -> Asm.li (1 + (r mod 8)) (Int64.of_int v)) (int_range 0 7) (int_range 0 1000);
             map3
               (fun a b d -> Asm.add (1 + (a mod 8)) (1 + (b mod 8)) (1 + (d mod 8)))
               (int_range 0 7) (int_range 0 7) (int_range 0 7)
             (* loads/stores via a shared pointer in t8 and private in sp *);
             map2
               (fun off r -> Asm.stq (1 + (r mod 8)) (8 * (off mod 16)) Asm.t8)
               (int_range 0 15) (int_range 0 7);
             map2
               (fun off d -> Asm.ldq (1 + (d mod 8)) (8 * (off mod 16)) Asm.t8)
               (int_range 0 15) (int_range 0 7);
             map2
               (fun off r -> Asm.stq (1 + (r mod 8)) (8 * (off mod 16)) Asm.sp)
               (int_range 0 15) (int_range 0 7);
           ]))
  in
  QCheck.Test.make ~name:"instrumentation preserves straight-line semantics" ~count:100
    (QCheck.make gen) (fun body ->
      (* t8 points at offset 0x2000; sp at 0x4000; sum all registers into
         v0 at the end to observe the whole state. *)
      let prologue = Asm.[ li t8 0x2000L; li sp 0x4000L ] in
      let epilogue =
        Asm.(
          [ li v0 0L ]
          @ List.concat_map (fun r -> [ add v0 r v0 ]) [ t0; t1; t2; t3; t4; t5; t6; t7 ]
          @ [ halt ])
      in
      let full = prologue @ body @ epilogue in
      let prog = Asm.(program [ proc "main" full ]) in
      let prog', _ = instrument prog in
      (run_flat prog "main").Interp.r0 = (run_flat prog' "main").Interp.r0)

let test_modification_time_model () =
  let splash = Rewrite.Instrument.modification_time_model ~procedures:370 ~slots:200_000 in
  let oracle = Rewrite.Instrument.modification_time_model ~procedures:12_000 ~slots:3_000_000 in
  Alcotest.(check bool) "SPLASH ~4-8s" true (splash > 3.0 && splash < 9.0);
  Alcotest.(check bool) "Oracle ~180-220s" true (oracle > 150.0 && oracle < 260.0)

let test_poll_precedes_pending_checks () =
  (* Regression for the pass-3 ordering bug: when a poll and checks land
     in front of the same instruction, the poll must come first — a
     check issued before a protocol entry point is dead (the validator's
     poll-kill rule convicts the swapped order; see the
     check-after-poll mutation). *)
  let prog =
    Asm.(
      program
        [
          proc "main"
            [
              label "outer";
              label "try_again";
              ll W32 t0 0 a0;
              bne t0 "try_again";
              li t0 1L;
              sc W32 t0 0 a0;
              beq t0 "try_again";
              mb;
              ldq t1 0 a1;
              addi t1 1 t1;
              stq t1 0 a1;
              mb;
              stl zero 0 a0;
              subi a2 1 a2;
              bgt a2 "outer";
              halt;
            ];
        ])
  in
  let prog', _ = instrument prog in
  let code = code_of prog' "main" in
  let is_check i =
    is_load_check i || is_store_check i || is_batch_check i || is_ll_check i || is_sc_check i
  in
  let poll_then_check = ref false in
  Array.iteri
    (fun i insn ->
      if is_poll insn then begin
        if i > 0 && is_check code.(i - 1) then
          Alcotest.fail "check emitted before a poll at the same site";
        if i + 1 < Array.length code && is_check code.(i + 1) then poll_then_check := true
      end)
    code;
  Alcotest.(check bool) "poll precedes its pending check" true !poll_then_check;
  Alcotest.(check bool) "validator-clean" true (Rewrite.Verify.ok (Rewrite.Verify.verify prog'))

let test_pointer_reloaded_after_call_rechecked () =
  (* v0 is provably private before the call; the call may redefine it
     (return-register convention), so the reload through it must be
     re-checked. *)
  let prog =
    Asm.(
      program
        [
          proc "main" [ li v0 0x100L; ldq t0 0 v0; call "f"; ldq t1 0 v0; halt ];
          proc "f" [ ret ];
        ])
  in
  let prog', stats = instrument prog in
  let code = code_of prog' "main" in
  Alcotest.(check int) "pre-call load private" 1 stats.Rewrite.Instrument.accesses_private;
  Alcotest.(check int) "post-call load checked" 1 (count is_load_check code);
  let idx pred =
    let r = ref (-1) in
    Array.iteri (fun i insn -> if !r < 0 && pred insn then r := i) code;
    !r
  in
  let call_i = idx (function Insn.Call _ -> true | _ -> false) in
  Alcotest.(check bool) "the check is after the call" true (idx is_load_check > call_i)

let test_float_laundered_pointer_still_checked () =
  (* A shared pointer converted to float, moved, and converted back must
     keep its class: the access through the laundered register is
     checked. *)
  let prog =
    Asm.(
      program
        [ proc "main" [ cvt_if a0 0; fmov 0 1; cvt_fi 1 t0; ldq t1 0 t0; halt ] ])
  in
  let prog', stats = instrument prog in
  let code = code_of prog' "main" in
  Alcotest.(check int) "load checked" 1 (count is_load_check code);
  Alcotest.(check int) "not treated as private" 0 stats.Rewrite.Instrument.accesses_private

let test_private_float_roundtrip_unchecked () =
  (* The same laundering of a provably private pointer stays
     unchecked — the class survives the float round trip. *)
  let prog =
    Asm.(
      program
        [ proc "main" [ li t0 0x100L; cvt_if t0 0; cvt_fi 0 t1; ldq t2 0 t1; halt ] ])
  in
  let prog', stats = instrument prog in
  let code = code_of prog' "main" in
  Alcotest.(check int) "no checks" 0 (count is_load_check code);
  Alcotest.(check int) "no batch checks" 0 (count is_batch_check code);
  Alcotest.(check int) "counted private" 1 stats.Rewrite.Instrument.accesses_private

(* --- dominator-tree properties on random CFGs ----------------------

   Random branchy procedures: a handful of labelled segments, each
   ending in an unconditional branch, a conditional branch (falls
   through), a halt, or plain fall-through, with targets drawn freely —
   so the CFGs include unreachable blocks, self loops, multiple
   backedges and irreducible shapes.  Domtree's idom/frontier answers
   are checked against direct-from-definition references. *)

module Cfg = Rewrite.Cfg
module Domtree = Rewrite.Domtree

let gen_branchy_proc =
  QCheck.Gen.(
    int_range 2 12 >>= fun nseg ->
    list_repeat nseg (pair (int_range 0 3) (int_range 0 (nseg - 1))) >|= fun segs ->
    let lbl k = Printf.sprintf "L%d" k in
    let body =
      List.concat
        (List.mapi
           (fun i (kind, tgt) ->
             Asm.[ label (lbl i); li t0 (Int64.of_int i) ]
             @
             match kind with
             | 0 -> [ Asm.br (lbl tgt) ]
             | 1 -> [ Asm.beq Asm.t0 (lbl tgt) ]
             | 2 -> [ Asm.halt ]
             | _ -> [])
           segs)
      @ [ Asm.halt ]
    in
    Asm.(program [ proc "main" body ]))

(* Reference dominator sets by the textbook dataflow fixpoint:
   Dom(entry) = {entry}, Dom(b) = {b} ∪ ⋂ over reachable preds. *)
let reach_and_doms cfg =
  let nb = Cfg.n_blocks cfg in
  let preds = Cfg.preds cfg in
  let reach = Array.make nb false in
  let rec dfs b =
    if not reach.(b) then begin
      reach.(b) <- true;
      List.iter dfs (Cfg.block cfg b).Cfg.succs
    end
  in
  if nb > 0 then dfs 0;
  let all = List.filter (fun b -> reach.(b)) (List.init nb Fun.id) in
  let dom = Array.init nb (fun b -> if b = 0 then [ 0 ] else all) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> 0 then begin
          let inter =
            match List.filter (fun p -> reach.(p)) preds.(b) with
            | [] -> []
            | p0 :: rest ->
                List.fold_left
                  (fun acc p -> List.filter (fun x -> List.mem x dom.(p)) acc)
                  dom.(p0) rest
          in
          let nd = List.sort_uniq compare (b :: inter) in
          if nd <> dom.(b) then begin
            dom.(b) <- nd;
            changed := true
          end
        end)
      all
  done;
  (reach, dom)

let qcheck_idom_is_dominator =
  QCheck.Test.make ~name:"idom chain reproduces the dominator-set reference" ~count:200
    (QCheck.make gen_branchy_proc) (fun prog ->
      let cfg = Cfg.build (Program.find prog "main") in
      let t = Domtree.build cfg in
      let reach, dom = reach_and_doms cfg in
      let nb = Cfg.n_blocks cfg in
      let blocks = List.init nb Fun.id in
      List.for_all
        (fun b ->
          Domtree.reachable t b = reach.(b)
          && ((not reach.(b))
             || List.filter (fun a -> Domtree.dominates t a b) blocks = dom.(b)
                && (match Domtree.idom t b with
                   | None -> b = 0
                   | Some d -> d <> b && List.mem d dom.(b))))
        blocks)

let qcheck_frontier_definition =
  (* v ∈ DF(n) iff n dominates one of v's reachable predecessors and n
     does not strictly dominate v — no more, no less. *)
  QCheck.Test.make ~name:"dominance frontier matches its definition" ~count:200
    (QCheck.make gen_branchy_proc) (fun prog ->
      let cfg = Cfg.build (Program.find prog "main") in
      let t = Domtree.build cfg in
      let preds = Cfg.preds cfg in
      let nb = Cfg.n_blocks cfg in
      let blocks = List.init nb Fun.id in
      let expected n =
        List.filter
          (fun v ->
            Domtree.reachable t v
            && List.exists (fun p -> Domtree.reachable t p && Domtree.dominates t n p) preds.(v)
            && not (n <> v && Domtree.dominates t n v))
          blocks
      in
      List.for_all
        (fun n ->
          (not (Domtree.reachable t n))
          || List.sort compare (Domtree.frontier t n) = expected n)
        blocks)

let qcheck_loop_header_dominates =
  QCheck.Test.make ~name:"natural-loop headers dominate their bodies" ~count:200
    (QCheck.make gen_branchy_proc) (fun prog ->
      let cfg = Cfg.build (Program.find prog "main") in
      let t = Domtree.build cfg in
      List.for_all
        (fun (br_i, tgt_i) ->
          let header = cfg.Cfg.block_of.(tgt_i) and latch = cfg.Cfg.block_of.(br_i) in
          match Domtree.natural_loop t ~header ~latch with
          | None -> not (Domtree.dominates t header latch)
          | Some inloop ->
              Domtree.dominates t header latch
              && inloop.(header) && inloop.(latch)
              && Array.for_all Fun.id
                   (Array.mapi (fun b inl -> (not inl) || Domtree.dominates t header b) inloop))
        (Cfg.backedges cfg))

let suite =
  [
    Alcotest.test_case "private not checked" `Quick test_private_not_checked;
    Alcotest.test_case "shared load checked (flag)" `Quick test_shared_load_checked;
    Alcotest.test_case "load into base uses state check" `Quick test_load_into_base_uses_state_check;
    Alcotest.test_case "store checked before" `Quick test_store_checked_before;
    Alcotest.test_case "batching merges" `Quick test_batching_merges_checks;
    Alcotest.test_case "batching respects clobbered base" `Quick test_batching_respects_clobbered_base;
    Alcotest.test_case "batching can be disabled" `Quick test_no_batch_option;
    Alcotest.test_case "poll at backedge" `Quick test_poll_at_backedge;
    Alcotest.test_case "LL/SC transform" `Quick test_llsc_transform;
    Alcotest.test_case "MB check inserted" `Quick test_mb_check_inserted;
    Alcotest.test_case "code growth" `Quick test_code_growth;
    Alcotest.test_case "lock program semantics preserved" `Quick test_semantics_preserved_lock_program;
    Alcotest.test_case "modification time model" `Quick test_modification_time_model;
    Alcotest.test_case "poll precedes pending checks" `Quick test_poll_precedes_pending_checks;
    Alcotest.test_case "pointer reloaded after call re-checked" `Quick
      test_pointer_reloaded_after_call_rechecked;
    Alcotest.test_case "float-laundered pointer still checked" `Quick
      test_float_laundered_pointer_still_checked;
    Alcotest.test_case "private float roundtrip unchecked" `Quick
      test_private_float_roundtrip_unchecked;
    QCheck_alcotest.to_alcotest qcheck_semantics_preserved;
    QCheck_alcotest.to_alcotest qcheck_idom_is_dominator;
    QCheck_alcotest.to_alcotest qcheck_frontier_definition;
    QCheck_alcotest.to_alcotest qcheck_loop_header_dominates;
  ]
