(* Tests for the Memory-Channel network model. *)

open Sim

let check_f = Alcotest.(check (float 1e-12))

let small_config =
  { Mchan.Net.default_config with Mchan.Net.nodes = 2; cpus_per_node = 2 }

let test_remote_latency () =
  let net = Mchan.Net.create small_config in
  let eng = Mchan.Net.engine net in
  let arrived = ref 0.0 in
  Engine.at eng 0.001 (fun () ->
      Mchan.Net.send net ~src_node:0 ~dst_node:1 ~size:0 (fun () ->
          arrived := Engine.now eng));
  ignore (Engine.run eng);
  check_f "one-way latency" (0.001 +. 4.0e-6) !arrived

let test_bandwidth_occupancy () =
  (* Two back-to-back 60000-byte messages on a 60 MB/s link: the second
     arrives one transfer time (1 ms) after the first. *)
  let net = Mchan.Net.create small_config in
  let eng = Mchan.Net.engine net in
  let times = ref [] in
  Engine.at eng 0.0 (fun () ->
      Mchan.Net.send net ~src_node:0 ~dst_node:1 ~size:60000 (fun () ->
          times := Engine.now eng :: !times);
      Mchan.Net.send net ~src_node:0 ~dst_node:1 ~size:60000 (fun () ->
          times := Engine.now eng :: !times));
  ignore (Engine.run eng);
  match List.rev !times with
  | [ t1; t2 ] ->
      check_f "first" (0.001 +. 4.0e-6) t1;
      check_f "second serialised" (0.002 +. 4.0e-6) t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_intra_node_fast_path () =
  let net = Mchan.Net.create small_config in
  let eng = Mchan.Net.engine net in
  let arrived = ref 0.0 in
  Engine.at eng 0.0 (fun () ->
      Mchan.Net.send net ~src_node:1 ~dst_node:1 ~size:64 (fun () ->
          arrived := Engine.now eng));
  ignore (Engine.run eng);
  check_f "intra-node latency" 1.0e-6 !arrived;
  Alcotest.(check int) "no remote message" 0 (Mchan.Net.remote_messages net);
  Alcotest.(check int) "one local message" 1 (Mchan.Net.local_messages net)

let test_signal_pulsed_on_arrival () =
  let net = Mchan.Net.create small_config in
  let eng = Mchan.Net.engine net in
  let pulsed_at = ref nan in
  Signal.wait (Mchan.Net.node_signal net 1) (fun () -> pulsed_at := Engine.now eng);
  Engine.at eng 0.0 (fun () ->
      Mchan.Net.send net ~src_node:0 ~dst_node:1 ~size:0 ignore);
  ignore (Engine.run eng);
  check_f "signal at arrival" 4.0e-6 !pulsed_at

let test_mailbox_fifo () =
  let mb = Mchan.Mailbox.create ~owner:7 in
  Mchan.Mailbox.push mb 1;
  Mchan.Mailbox.push mb 2;
  Mchan.Mailbox.push mb 3;
  Alcotest.(check int) "owner" 7 (Mchan.Mailbox.owner mb);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Mchan.Mailbox.pop mb);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Mchan.Mailbox.pop mb);
  Alcotest.(check int) "length" 1 (Mchan.Mailbox.length mb);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Mchan.Mailbox.pop mb);
  Alcotest.(check (option int)) "empty" None (Mchan.Mailbox.pop mb)

let test_nth_cpu_node_major () =
  let net = Mchan.Net.create Mchan.Net.default_config in
  let c5 = Mchan.Net.nth_cpu net 5 in
  Alcotest.(check int) "node of cpu 5" 1 c5.Proc.node_id;
  Alcotest.(check int) "global id" 5 c5.Proc.cpu_global_id;
  Alcotest.(check int) "total cpus" 16 (Mchan.Net.total_cpus net)

let test_zero_byte_payload () =
  (* A zero-byte message occupies the link for zero time and leaves the
     occupancy accounting untouched, but still counts as a message. *)
  let link = Mchan.Link.create ~bandwidth:60.0e6 in
  let fin = Mchan.Link.transmit link ~now:0.5 ~size:0 in
  check_f "leaves instantly" 0.5 fin;
  check_f "no occupancy" 0.0 (Mchan.Link.occupancy link);
  Alcotest.(check int) "counted as a message" 1 (Mchan.Link.messages link);
  Alcotest.(check int) "no bytes" 0 (Mchan.Link.bytes link);
  (* A later real transfer is not pushed back by the zero-byte one. *)
  let fin2 = Mchan.Link.transmit link ~now:0.5 ~size:60000 in
  check_f "next transfer starts immediately" (0.5 +. 0.001) fin2

let test_link_saturation () =
  (* Back-to-back sends injected at the same instant serialise: message
     k leaves at (k+1) transfer times, and total occupancy equals the
     sum of the transfer times (the link is never idle). *)
  let link = Mchan.Link.create ~bandwidth:60.0e6 in
  let xfer = 6000.0 /. 60.0e6 in
  for k = 0 to 9 do
    let fin = Mchan.Link.transmit link ~now:0.0 ~size:6000 in
    check_f (Printf.sprintf "message %d serialised" k) (float_of_int (k + 1) *. xfer) fin
  done;
  check_f "occupancy is the busy time" (10.0 *. xfer) (Mchan.Link.occupancy link);
  Alcotest.(check int) "bytes accumulated" 60000 (Mchan.Link.bytes link);
  (* A message injected while the link is saturated queues behind the
     backlog rather than starting at its injection time. *)
  let fin = Mchan.Link.transmit link ~now:(xfer /. 2.0) ~size:6000 in
  check_f "mid-busy injection queues" (11.0 *. xfer) fin

let qcheck_link_never_overlaps =
  QCheck.Test.make ~name:"link transmissions never overlap" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (float_bound_exclusive 0.01) (int_range 1 10000)))
    (fun sends ->
      let link = Mchan.Link.create ~bandwidth:60.0e6 in
      let sends = List.sort (fun (a, _) (b, _) -> compare a b) sends in
      let ok = ref true in
      let prev_end = ref 0.0 in
      List.iter
        (fun (t, size) ->
          let finish = Mchan.Link.transmit link ~now:t ~size in
          let xfer = float_of_int size /. 60.0e6 in
          if finish -. xfer < !prev_end -. 1e-15 then ok := false;
          if finish -. xfer < t -. 1e-15 then ok := false;
          prev_end := finish)
        sends;
      !ok)

let suite =
  [
    Alcotest.test_case "remote latency" `Quick test_remote_latency;
    Alcotest.test_case "bandwidth occupancy" `Quick test_bandwidth_occupancy;
    Alcotest.test_case "intra-node fast path" `Quick test_intra_node_fast_path;
    Alcotest.test_case "signal pulsed on arrival" `Quick test_signal_pulsed_on_arrival;
    Alcotest.test_case "mailbox FIFO" `Quick test_mailbox_fifo;
    Alcotest.test_case "nth_cpu node-major" `Quick test_nth_cpu_node_major;
    Alcotest.test_case "zero-byte payload" `Quick test_zero_byte_payload;
    Alcotest.test_case "link saturation" `Quick test_link_saturation;
    QCheck_alcotest.to_alcotest qcheck_link_never_overlaps;
  ]
