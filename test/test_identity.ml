(* Fifo bit-identity regression for the event core.

   The simulator's verification story rests on the [Fifo] schedule being
   exactly reproducible: every perf change to the heap, the dispatcher,
   or the protocol fast paths must leave sequential runs bit-identical.
   The goldens under [goldens/] record the exact Fifo outputs — raised
   to full float-bit precision, which the benches' rounded tables would
   hide — of three slices of the evaluation:

   - a Table-1 slice: cached lock-acquire latency, MP and both SM
     flavours;
   - a Figure-3 slice: LU and Water-Nsq elapsed times at 1 and 4
     processors under both synchronisation flavours;
   - the IR corpus: per-kernel interpreter step counts, check-slot
     counts, [r0] checksums and a digest of the final shared image.

   Any engine change that perturbs event order, simulated timing, or
   interpreter behaviour shows up as a byte diff against the golden.
   After auditing an intentional behaviour change, regenerate with

     SHASTA_UPDATE_GOLDENS=$PWD/test/goldens \
       dune exec test/test_main.exe -- test identity

   and commit the new golden alongside the change that explains it. *)

module C = Shasta.Cluster
module R = Shasta.Runtime

let cluster ?(nodes = 4) ?(cpus = 4) ?(parallel = 1) () =
  C.create
    {
      Shasta.Config.default with
      Shasta.Config.net =
        { Mchan.Net.default_config with Mchan.Net.nodes; cpus_per_node = cpus };
      parallel;
      protocol =
        { Protocol.Config.default with Protocol.Config.shared_size = 8 * 1024 * 1024 };
    }

(* Exact float rendering: decimal for the reader, bits for the byte
   diff (two floats can share a %.6f rendering and still differ). *)
let exact x = Printf.sprintf "%.6f (bits %016Lx)" x (Int64.bits_of_float x)

(* --- Table 1 slice: cached lock acquire ----------------------------- *)

type lock_kind = Mp_lock | Sm_lock | Sm_prefetch

let lock_cached kind =
  let cl = cluster ~nodes:1 ~cpus:1 () in
  let addr = C.alloc cl 64 in
  let acq = ref 0.0 in
  let iters = 50 in
  let _ =
    C.spawn cl ~cpu:0 "locker" (fun h ->
        for _ = 1 to iters do
          let t0 = C.now cl in
          (match kind with
          | Mp_lock -> R.lock h 0
          | Sm_lock -> R.sm_lock h addr
          | Sm_prefetch -> R.sm_lock ~prefetch:true h addr);
          R.flush h;
          acq := !acq +. (C.now cl -. t0);
          match kind with Mp_lock -> R.unlock h 0 | Sm_lock | Sm_prefetch -> R.sm_unlock h addr
        done)
  in
  ignore (C.run cl);
  !acq /. float_of_int iters

let render_table1 buf =
  List.iter
    (fun (name, kind) ->
      Buffer.add_string buf
        (Printf.sprintf "table1-cached %-5s %s\n" name (exact (1e6 *. lock_cached kind))))
    [ ("MP", Mp_lock); ("SM", Sm_lock); ("SM+pf", Sm_prefetch) ]

(* --- Figure 3 slice: LU and Water-Nsq elapsed times ------------------ *)

let fig3_apps = [ "LU"; "Water-Nsq" ]
let fig3_procs = [ 1; 4 ]

let render_figure3 buf =
  List.iter
    (fun app ->
      let spec = Apps.Registry.find app in
      List.iter
        (fun (sname, sync) ->
          List.iter
            (fun nprocs ->
              let cl = cluster () in
              let elapsed, ok = Apps.Harness.run_spec cl spec ~nprocs ~sync () in
              Buffer.add_string buf
                (Printf.sprintf "figure3 %-10s %s@%d elapsed=%s ok=%b\n" app sname nprocs
                   (exact elapsed) ok))
            fig3_procs)
        [ ("Mp", Apps.Harness.Mp); ("Sm", Apps.Harness.Sm) ])
    fig3_apps

(* --- IR corpus: interpreter fingerprints ----------------------------- *)

(* FNV-style fold over the final shared image; one wrong word anywhere
   changes the digest. *)
let image_digest image =
  Array.fold_left
    (fun acc w -> Int64.add (Int64.mul acc 0x100000001b3L) w)
    0xcbf29ce484222325L image

let render_ircorpus buf =
  List.iter
    (fun (e : Apps.Ircorpus.entry) ->
      let prog, _ =
        Rewrite.Instrument.instrument ~options:Rewrite.Instrument.default_options
          e.Apps.Ircorpus.e_program
      in
      let r = Apps.Ircorpus.run prog e in
      Buffer.add_string buf
        (Printf.sprintf "ircorpus %-12s steps=%d slots=%d r0=%016Lx image=%016Lx elapsed=%s\n"
           e.Apps.Ircorpus.e_name r.Apps.Ircorpus.steps r.Apps.Ircorpus.check_slots
           r.Apps.Ircorpus.r0
           (image_digest r.Apps.Ircorpus.image)
           (exact r.Apps.Ircorpus.elapsed)))
    Apps.Ircorpus.all

let render () =
  let buf = Buffer.create 4096 in
  render_table1 buf;
  render_figure3 buf;
  render_ircorpus buf;
  Buffer.contents buf

(* dune runtest runs in _build/default/test (where the deps glob put the
   golden); dune exec runs from the workspace root. *)
let golden_file =
  if Sys.file_exists "goldens/fifo_identity.txt" then "goldens/fifo_identity.txt"
  else "test/goldens/fifo_identity.txt"

let test_fifo_identity () =
  let got = render () in
  match Sys.getenv_opt "SHASTA_UPDATE_GOLDENS" with
  | Some dir ->
      let path = Filename.concat dir (Filename.basename golden_file) in
      Out_channel.with_open_bin path (fun oc -> output_string oc got);
      Printf.printf "wrote %s\n" path
  | None ->
      let want = In_channel.with_open_bin golden_file In_channel.input_all in
      Alcotest.(check string) "Fifo output matches committed golden byte-for-byte" want got

(* --- Parallel cross-validation --------------------------------------- *)

(* The conservative parallel driver must cross-validate against the
   sequential Fifo engine: every run validates and the protocol sweeps
   clean afterwards.  Elapsed time is near- but not bit-identical to
   sequential — a cross-lane event merged at a window barrier receives a
   fresh sequence number, so a same-time local/cross pair on one lane
   can fire in the opposite order from the sequential global numbering.
   That is a permutation of causally-concurrent events (the same class
   a [Seeded] schedule explores), so we bound the drift tightly instead
   of requiring equality.  The merge order itself is deterministic in
   [(time, src lane, src seq)] and independent of how lanes are dealt to
   workers, so parallel runs at different domain counts must agree
   bit-for-bit with each other. *)
let par_run app ~parallel =
  let spec = Apps.Registry.find app in
  let cl = cluster ~nodes:4 ~cpus:1 ~parallel () in
  let elapsed, ok = Apps.Harness.run_spec cl spec ~nprocs:4 ~sync:Apps.Harness.Mp () in
  let quiescent = Protocol.Engine.check_quiescent (C.protocol_engine cl) in
  (elapsed, ok, quiescent)

let test_parallel_cross_validation () =
  List.iter
    (fun app ->
      let seq_elapsed, seq_ok, _ = par_run app ~parallel:1 in
      Alcotest.(check bool) (app ^ " sequential validated") true seq_ok;
      let par_elapsed =
        List.map
          (fun parallel ->
            let elapsed, ok, quiescent = par_run app ~parallel in
            Alcotest.(check bool) (Printf.sprintf "%s par%d validated" app parallel) true ok;
            Alcotest.(check (list string))
              (Printf.sprintf "%s par%d quiescent" app parallel)
              [] quiescent;
            Alcotest.(check bool)
              (Printf.sprintf "%s par%d elapsed within 1e-3 of sequential" app parallel)
              true
              (abs_float (elapsed -. seq_elapsed) /. seq_elapsed < 1e-3);
            elapsed)
          [ 2; 4 ]
      in
      match par_elapsed with
      | [ e2; e4 ] ->
          Alcotest.(check int64)
            (app ^ " par2 and par4 bit-identical")
            (Int64.bits_of_float e2) (Int64.bits_of_float e4)
      | _ -> assert false)
    fig3_apps

let suite =
  [
    Alcotest.test_case "Fifo bit-identity vs golden" `Slow test_fifo_identity;
    Alcotest.test_case "parallel agrees with sequential" `Slow test_parallel_cross_validation;
  ]
