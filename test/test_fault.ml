(* Tests for the fault-injection plan and the reliable transport: the
   directory protocol must produce fault-free results under injected
   loss, duplication, reordering, corruption and node stalls, and the
   reliable layer must cost nothing when the fault plan is empty. *)

open Sim
module Plan = Fault.Plan

let heavy_faults =
  { Plan.drop = 0.2; dup = 0.15; corrupt = 0.1; delay = 0.25; delay_max = 2.0e-4 }

let test_plan_determinism () =
  let draw seed =
    let p = Plan.create ~seed ~default:heavy_faults () in
    List.init 300 (fun _ -> Plan.decide p ~src:0 ~dst:1)
  in
  Alcotest.(check bool) "same seed, same schedule" true (draw 42 = draw 42);
  Alcotest.(check bool) "different seed, different schedule" false (draw 42 = draw 43);
  let p = Plan.create ~seed:42 ~default:heavy_faults () in
  let a = List.init 300 (fun _ -> Plan.decide p ~src:0 ~dst:1) in
  let b = List.init 300 (fun _ -> Plan.decide p ~src:1 ~dst:0) in
  Alcotest.(check bool) "links draw independent streams" false (a = b)

let test_plan_outages () =
  let p =
    Plan.create
      ~outages:[ Plan.stall ~node:1 ~at:0.001 ~duration:0.002; Plan.crash ~node:2 ~at:0.5 ]
      ()
  in
  Alcotest.(check bool) "plan with outages is not empty" false (Plan.is_empty p);
  Alcotest.(check bool) "before stall" false (Plan.node_down p ~node:1 ~at:0.0009);
  Alcotest.(check bool) "stall start is inclusive" true (Plan.node_down p ~node:1 ~at:0.001);
  Alcotest.(check bool) "mid-stall" true (Plan.node_down p ~node:1 ~at:0.0029);
  Alcotest.(check bool) "stall end is exclusive" false (Plan.node_down p ~node:1 ~at:0.003);
  Alcotest.(check bool) "other node unaffected" false (Plan.node_down p ~node:0 ~at:0.002);
  Alcotest.(check bool) "before crash" false (Plan.node_down p ~node:2 ~at:0.4);
  Alcotest.(check bool) "crash never recovers" true (Plan.node_down p ~node:2 ~at:3600.0);
  Alcotest.(check bool) "empty plan is empty" true (Plan.is_empty Plan.empty)

let test_spec_parsing () =
  let p = Plan.of_spec "seed=7,drop=0.05,dup=0.01,delay=0.1:5e-5,stall=1@0.001:0.0005,crash=0@2.0" in
  Alcotest.(check int) "seed" 7 (Plan.seed p);
  Alcotest.(check bool) "not empty" false (Plan.is_empty p);
  Alcotest.(check bool) "stall parsed" true (Plan.node_down p ~node:1 ~at:0.0012);
  Alcotest.(check bool) "crash parsed" true (Plan.node_down p ~node:0 ~at:5.0);
  let p2 = Plan.of_spec "seed=9,link=0-1:drop=0.5;dup=0.25" in
  (* The link override steers every verdict on 0->1; 1->0 stays clean. *)
  let only_01 = List.init 200 (fun _ -> Plan.decide p2 ~src:0 ~dst:1) in
  Alcotest.(check bool) "per-link override injects" true
    (List.exists (fun a -> a <> Plan.Deliver) only_01);
  Alcotest.(check bool) "other links clean" true
    (List.for_all (fun a -> a = Plan.Deliver) (List.init 200 (fun _ -> Plan.decide p2 ~src:1 ~dst:0)));
  Alcotest.(check bool) "seed-only spec is an empty plan" true (Plan.is_empty (Plan.of_spec "seed=5"));
  Alcotest.check_raises "probability sum above 1 rejected"
    (Invalid_argument "Plan.create: fault probabilities sum above 1") (fun () ->
      ignore (Plan.of_spec "drop=0.6,dup=0.6"));
  Alcotest.check_raises "garbage rejected"
    (Invalid_argument "Plan.of_spec: unknown key \"frobnicate\"") (fun () ->
      ignore (Plan.of_spec "frobnicate=1"))

(* Exactly-once, in-order delivery through Net.send under heavy loss,
   duplication, corruption and reordering. *)
let test_exactly_once_in_order () =
  let plan = Plan.create ~seed:9 ~default:heavy_faults () in
  let net =
    Mchan.Net.create ~plan
      { Mchan.Net.default_config with Mchan.Net.nodes = 2; cpus_per_node = 1 }
  in
  let eng = Mchan.Net.engine net in
  let got = ref [] in
  Engine.at eng 0.0 (fun () ->
      for i = 0 to 199 do
        Mchan.Net.send net ~src_node:0 ~dst_node:1 ~size:64 (fun () -> got := i :: !got)
      done);
  ignore (Engine.run eng);
  Alcotest.(check (list int)) "all 200 delivered exactly once, in order"
    (List.init 200 (fun i -> i))
    (List.rev !got);
  let r = Option.get (Mchan.Net.reliable net) in
  let tot = Mchan.Reliable.totals r in
  Alcotest.(check bool) "losses forced retransmissions" true (tot.Mchan.Reliable.retransmits > 0);
  Alcotest.(check bool) "duplicates were suppressed" true (tot.Mchan.Reliable.dup_suppressed > 0);
  Alcotest.(check bool) "faults were injected" true
    (tot.Mchan.Reliable.inj_dropped > 0 && tot.Mchan.Reliable.inj_corrupted > 0)

(* A message sent into a stall window is delivered after the node
   recovers, by retransmission. *)
let test_stall_recovery () =
  let plan = Plan.create ~outages:[ Plan.stall ~node:1 ~at:0.0 ~duration:5.0e-4 ] () in
  let net =
    Mchan.Net.create ~plan
      { Mchan.Net.default_config with Mchan.Net.nodes = 2; cpus_per_node = 1 }
  in
  let eng = Mchan.Net.engine net in
  let delivered = ref [] in
  Engine.at eng 1.0e-4 (fun () ->
      Mchan.Net.send net ~src_node:0 ~dst_node:1 ~size:64 (fun () ->
          delivered := Engine.now eng :: !delivered));
  ignore (Engine.run eng);
  (match !delivered with
  | [ at ] -> Alcotest.(check bool) "delivered only after the stall ends" true (at >= 5.0e-4)
  | l -> Alcotest.failf "expected exactly one delivery, got %d" (List.length l));
  let r = Option.get (Mchan.Net.reliable net) in
  let tot = Mchan.Reliable.totals r in
  Alcotest.(check bool) "stall discarded frames" true (tot.Mchan.Reliable.outage_dropped > 0);
  Alcotest.(check bool) "recovery took retransmissions" true (tot.Mchan.Reliable.retransmits > 0);
  Alcotest.(check bool) "the stalled node's drops are attributed" true
    (Mchan.Reliable.node_outage_drops r 1 > 0)

(* --- whole-application runs --- *)

let cluster ?(plan = Plan.empty) ?(check_invariants = false) () =
  Shasta.Cluster.create
    {
      Shasta.Config.default with
      Shasta.Config.net =
        { Mchan.Net.default_config with Mchan.Net.nodes = 2; cpus_per_node = 2 };
      fault_plan = plan;
      protocol =
        {
          Protocol.Config.default with
          Protocol.Config.shared_size = 4 * 1024 * 1024;
          check_invariants;
        };
    }

let run_app ?plan spec ~size =
  let cl = cluster ?plan () in
  let elapsed, ok = Apps.Harness.run_spec cl spec ~nprocs:4 ~sync:Apps.Harness.Mp ~size () in
  let retx =
    match Shasta.Cluster.reliable cl with
    | None -> 0
    | Some r -> (Mchan.Reliable.totals r).Mchan.Reliable.retransmits
  in
  (elapsed, ok, retx)

(* Sizes mirror test_apps.ml: small enough to keep the suite quick. *)
let app_size spec =
  match spec.Apps.Harness.name with
  | "Barnes" -> 64
  | "FMM" -> 96
  | "LU" | "LU-Contig" -> 24
  | "Ocean" -> 18
  | "Raytrace" -> 48
  | "Volrend" -> 48
  | _ -> 40 (* Water-Nsq, Water-Sp *)

(* The acceptance run: >=5% drop plus a transient node stall; every
   registered application must still validate (coherence preserved) and
   the transport must have actually repaired losses. *)
let test_apps_survive_faults () =
  let total_retx = ref 0 in
  List.iter
    (fun spec ->
      let plan =
        Plan.create ~seed:123
          ~default:{ Plan.no_faults with Plan.drop = 0.05; dup = 0.01 }
          ~outages:[ Plan.stall ~node:1 ~at:2.0e-4 ~duration:3.0e-4 ]
          ()
      in
      let size = app_size spec in
      let _, ok_clean, _ = run_app spec ~size in
      let _, ok_faulty, retx = run_app ~plan spec ~size in
      total_retx := !total_retx + retx;
      Alcotest.(check bool)
        (Printf.sprintf "%s validates without faults" spec.Apps.Harness.name)
        true ok_clean;
      Alcotest.(check bool)
        (Printf.sprintf "%s validates under 5%% drop + stall (retx %d)" spec.Apps.Harness.name retx)
        true ok_faulty)
    Apps.Registry.all;
  Alcotest.(check bool) "retransmit counters are non-zero" true (!total_retx > 0)

(* An empty fault plan must not install the reliable layer at all: the
   simulated run time matches the raw channel exactly. *)
let test_empty_plan_zero_overhead () =
  let baseline, ok_a, _ = run_app Apps.Ocean.spec ~size:18 in
  let via_spec, ok_b, _ = run_app ~plan:(Plan.of_spec "seed=5") Apps.Ocean.spec ~size:18 in
  Alcotest.(check bool) "both validate" true (ok_a && ok_b);
  Alcotest.(check (float 0.0)) "empty plan: identical simulated time" baseline via_spec;
  let cl = cluster ~plan:(Plan.of_spec "seed=5") () in
  Alcotest.(check bool) "no transport installed" true (Shasta.Cluster.reliable cl = None)

(* Same seed, same fault schedule: faulty runs stay deterministic. *)
let test_faulty_run_deterministic () =
  let plan () =
    Plan.create ~seed:77 ~default:heavy_faults
      ~outages:[ Plan.stall ~node:0 ~at:3.0e-4 ~duration:2.0e-4 ]
      ()
  in
  let t_a, ok_a, retx_a = run_app ~plan:(plan ()) Apps.Lu.spec ~size:24 in
  let t_b, ok_b, retx_b = run_app ~plan:(plan ()) Apps.Lu.spec ~size:24 in
  Alcotest.(check bool) "both validate" true (ok_a && ok_b);
  Alcotest.(check (float 0.0)) "identical simulated time" t_a t_b;
  Alcotest.(check int) "identical retransmit count" retx_a retx_b;
  Alcotest.(check bool) "faults actually fired" true (retx_a > 0)

(* The coherence invariant checker is pure observation: a SPLASH run
   under injected loss with per-message checking on must report zero
   violations, still validate, and take the exact same simulated time
   as the unchecked run. *)
let test_invariant_checker_under_faults () =
  let plan () =
    Plan.create ~seed:31 ~default:{ Plan.no_faults with Plan.drop = 0.05; dup = 0.01 } ()
  in
  let t_off, ok_off, _ = run_app ~plan:(plan ()) Apps.Ocean.spec ~size:18 in
  let cl = cluster ~plan:(plan ()) ~check_invariants:true () in
  let t_on, ok_on =
    Apps.Harness.run_spec cl Apps.Ocean.spec ~nprocs:4 ~sync:Apps.Harness.Mp ~size:18 ()
  in
  Alcotest.(check bool) "both validate" true (ok_off && ok_on);
  Alcotest.(check (float 0.0)) "checker does not perturb the simulation" t_off t_on;
  Alcotest.(check bool) "checks actually ran" true
    (Protocol.Engine.invariant_checks (Shasta.Cluster.protocol_engine cl) > 0);
  Alcotest.(check (list string)) "quiescent state is clean" []
    (Protocol.Engine.check_quiescent (Shasta.Cluster.protocol_engine cl))

(* The transparent LL/SC path must also survive injected faults. *)
let test_sm_sync_survives_faults () =
  let plan =
    Plan.create ~seed:5
      ~default:{ Plan.no_faults with Plan.drop = 0.05; delay = 0.1; delay_max = 5.0e-5 }
      ()
  in
  let cl = cluster ~plan () in
  let _, ok =
    Apps.Harness.run_spec cl Apps.Water.spec_nsq ~nprocs:4 ~sync:Apps.Harness.Sm ~size:40 ()
  in
  Alcotest.(check bool) "Water-Nsq validates with LL/SC sync under faults" true ok

let suite =
  [
    Alcotest.test_case "plan determinism" `Quick test_plan_determinism;
    Alcotest.test_case "plan outages" `Quick test_plan_outages;
    Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "exactly-once in-order delivery" `Quick test_exactly_once_in_order;
    Alcotest.test_case "stall recovery" `Quick test_stall_recovery;
    Alcotest.test_case "apps survive faults" `Quick test_apps_survive_faults;
    Alcotest.test_case "empty plan: zero overhead" `Quick test_empty_plan_zero_overhead;
    Alcotest.test_case "faulty runs deterministic" `Quick test_faulty_run_deterministic;
    Alcotest.test_case "invariant checker under faults" `Quick test_invariant_checker_under_faults;
    Alcotest.test_case "SM sync survives faults" `Quick test_sm_sync_survives_faults;
  ]
